//! `lgg-sim chaos`: a seeded adversarial campaign over the whole fault
//! space, with failure shrinking.
//!
//! The paper's claims are adversarial — losses are adversary-controlled
//! (Section III), R-generalized nodes may lie (Definition 6(ii)), and the
//! conjectures cover bursts and churn — so the interesting engine bugs
//! live at the *composition* of fault models, not in any one of them.
//! This module randomly composes scenarios across topology × injection ×
//! loss × churn × liar declarations, runs every trial under the
//! [`InvariantGuard`], and — when a trial breaks an invariant — greedily
//! **shrinks** the failing scenario (shorter horizon, fewer fault models,
//! fewer nodes) to a minimal reproducer written to `results/chaos/`.
//!
//! Determinism: every trial derives from `campaign seed + trial index`,
//! trials are data-parallel on `parpool` (the pool decides *where* a
//! trial runs, never *what* it computes), and the campaign digest is an
//! FNV-1a over per-trial outcomes in input order — CI compares it across
//! `LGG_THREADS` settings. The engine is believed correct, so a clean
//! campaign is the expected result; `--inject-fault` plants a synthetic
//! conservation bug in every trial to exercise the
//! detect → shrink → reproduce pipeline end-to-end.

use std::path::{Path, PathBuf};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use simqueue::{
    BudgetKind, FaultSpec, GuardConfig, GuardOutcome, GuardReport, HistoryMode, InvariantGuard,
    LggError, NoopObserver, SimOverrides, Violation,
};

use crate::{
    DeclarationSpec, DynamicsSpec, Endpoint, GeneralizedNode, InjectionSpec, LossSpec,
    ObserverSpec, ProtocolSpec, Scenario, TopologySpec,
};

/// Per-trial backlog budget: a runaway (legitimately diverging) random
/// scenario stops here instead of eating memory for the whole horizon.
const TRIAL_MAX_BACKLOG: u64 = 100_000;

/// Shrink iterations cap (each iteration applies at most one candidate).
const MAX_SHRINK_ROUNDS: usize = 40;

/// `lgg-sim chaos` invocation parameters.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Trials in the campaign.
    pub trials: usize,
    /// Campaign master seed; trial `i` derives its own seed from it.
    pub seed: u64,
    /// Steps per trial.
    pub steps: u64,
    /// Where reproducers are written.
    pub out_dir: String,
    /// Plant a synthetic conservation fault at this step in every trial
    /// (test-only hook — exercises the shrink/reproduce pipeline).
    pub inject_fault: Option<u64>,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            trials: 48,
            seed: 42,
            steps: 1500,
            out_dir: "results/chaos".into(),
            inject_fault: None,
        }
    }
}

impl ChaosConfig {
    /// The CI smoke configuration: small, fast, deterministic.
    pub fn smoke() -> Self {
        ChaosConfig {
            trials: 12,
            steps: 400,
            ..ChaosConfig::default()
        }
    }
}

/// A minimal failing scenario: everything needed to re-trigger the
/// recorded violation deterministically (`lgg-sim chaos --replay FILE`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Reproducer {
    /// The (shrunk) scenario.
    pub scenario: Scenario,
    /// The master seed (duplicates `scenario.seed` for greppability).
    pub seed: u64,
    /// Steps to run (the shrunk horizon).
    pub steps: u64,
    /// The synthetic fault, when the violation was planted by the
    /// test-only hook rather than found in the engine.
    #[serde(default)]
    pub fault: Option<FaultSpec>,
    /// The violation this reproducer re-triggers.
    pub violation: Violation,
}

/// What one campaign run observed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosReport {
    /// Trials executed.
    pub trials: usize,
    /// Trials that completed the full horizon violation-free.
    pub clean: usize,
    /// Trials stopped by the backlog budget (legitimately overloaded
    /// random scenarios — not engine bugs).
    pub budget: usize,
    /// Trials whose composed scenario failed to build (impossible
    /// parameter collisions; counted, never fatal).
    pub build_errors: usize,
    /// Trials that broke an invariant.
    pub violations: usize,
    /// FNV-1a digest over per-trial outcomes in input order — identical
    /// across `LGG_THREADS` settings by construction.
    pub digest: String,
    /// Reproducer files written (one per violating trial, post-shrink).
    pub reproducers: Vec<String>,
}

/// One trial's condensed, hashable outcome.
#[derive(Debug, Clone, PartialEq)]
enum TrialOutcome {
    Clean { steps: u64, sup_total: u64 },
    Budget { kind: BudgetKind, steps: u64 },
    BuildError(String),
    Violated(Box<(Scenario, Violation)>),
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(hash, |h, &b| (h ^ b as u64).wrapping_mul(FNV_PRIME))
}

fn fnv1a_u64(hash: u64, x: u64) -> u64 {
    fnv1a(hash, &x.to_le_bytes())
}

fn digest_outcomes(outcomes: &[TrialOutcome]) -> String {
    let h = outcomes.iter().fold(FNV_OFFSET, |h, o| match o {
        TrialOutcome::Clean { steps, sup_total } => {
            fnv1a_u64(fnv1a_u64(fnv1a_u64(h, 0), *steps), *sup_total)
        }
        TrialOutcome::Budget { kind, steps } => {
            let k = match kind {
                BudgetKind::Steps => 1,
                BudgetKind::Backlog => 2,
                BudgetKind::WallClock => 3,
            };
            fnv1a_u64(fnv1a_u64(fnv1a_u64(h, 1), k), *steps)
        }
        TrialOutcome::BuildError(msg) => fnv1a(fnv1a_u64(h, 2), msg.as_bytes()),
        TrialOutcome::Violated(b) => {
            let v = &b.1;
            fnv1a(
                fnv1a_u64(fnv1a_u64(h, 3), v.step),
                v.kind.as_str().as_bytes(),
            )
        }
    });
    format!("{h:016x}")
}

/// The guard configuration chaos trials run under: the hard invariants
/// on, divergence *off* (random overloaded scenarios legitimately
/// diverge — that is the boundary being searched, not an engine bug),
/// and a backlog budget so runaways stop early. No wall-clock budget:
/// it would make outcomes timing-dependent and break the cross-thread
/// determinism digest.
fn trial_guard_config() -> GuardConfig {
    let mut cfg = GuardConfig::checks();
    cfg.max_backlog = Some(TRIAL_MAX_BACKLOG);
    cfg
}

/// Runs one scenario to `steps` under the chaos guard settings.
fn run_trial(sc: &Scenario, steps: u64, fault: Option<FaultSpec>) -> Result<GuardReport, LggError> {
    let spec = sc.traffic_spec()?;
    let guard = InvariantGuard::with_inner(&spec, trial_guard_config(), NoopObserver);
    let mut sim = sc.build_with_observer(
        SimOverrides {
            history: Some(HistoryMode::None),
            ..SimOverrides::default()
        },
        guard,
    )?;
    sim.run_guarded(steps, None, fault)
}

/// Derives trial `i`'s seed from the campaign seed (SplitMix64-style
/// increment keeps neighboring trials decorrelated).
fn trial_seed(campaign_seed: u64, i: usize) -> u64 {
    campaign_seed.wrapping_add((i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

fn pick_topology(rng: &mut StdRng) -> TopologySpec {
    match rng.random_range(0..9u32) {
        0 => TopologySpec::Path {
            n: rng.random_range(4..=16),
        },
        1 => TopologySpec::Cycle {
            n: rng.random_range(4..=16),
        },
        2 => TopologySpec::Grid2d {
            rows: rng.random_range(2..=5),
            cols: rng.random_range(2..=5),
        },
        3 => TopologySpec::Torus2d {
            rows: rng.random_range(3..=4),
            cols: rng.random_range(3..=4),
        },
        4 => TopologySpec::Dumbbell {
            clique: rng.random_range(2..=4),
            bridge: rng.random_range(1..=3),
        },
        5 => TopologySpec::LayeredDiamond {
            layers: rng.random_range(2..=4),
            width: rng.random_range(2..=3),
        },
        6 => TopologySpec::LeafSpine {
            leaves: rng.random_range(2..=3),
            spines: 2,
            trunks: 1,
            hosts_per_leaf: rng.random_range(1..=2),
        },
        7 => TopologySpec::ConnectedRandom {
            n: rng.random_range(8..=24),
            extra: rng.random_range(4..=16),
            seed: rng.random_range(0..1_000_000),
        },
        _ => TopologySpec::RandomGeometric {
            n: rng.random_range(12..=24),
            radius: 0.4 + rng.random_range(0..20u32) as f64 / 100.0,
            seed: rng.random_range(0..1_000_000),
        },
    }
}

fn distinct_nodes(rng: &mut StdRng, n: usize, count: usize) -> Vec<u32> {
    let count = count.min(n);
    let mut picked: Vec<u32> = Vec::with_capacity(count);
    while picked.len() < count {
        let v = rng.random_range(0..n as u32);
        if !picked.contains(&v) {
            picked.push(v);
        }
    }
    picked
}

fn pick_injection(rng: &mut StdRng) -> InjectionSpec {
    match rng.random_range(0..6u32) {
        0 => InjectionSpec::Exact,
        1 => InjectionSpec::Scaled { num: 1, den: 2 },
        2 => InjectionSpec::Bernoulli {
            p: 0.2 + rng.random_range(0..70u32) as f64 / 100.0,
        },
        3 => InjectionSpec::Uniform {
            mean: rng.random_range(1..=2),
        },
        4 => InjectionSpec::Burst {
            burst: rng.random_range(2..=6),
            quiet: rng.random_range(2..=6),
            amount: rng.random_range(1..=3),
        },
        _ => InjectionSpec::Trace {
            schedule: vec![1, 0, 2, 0, 1],
            scale: true,
        },
    }
}

fn pick_loss(rng: &mut StdRng) -> LossSpec {
    match rng.random_range(0..4u32) {
        0 => LossSpec::None,
        1 => LossSpec::Iid {
            p: 0.05 + rng.random_range(0..35u32) as f64 / 100.0,
        },
        2 => LossSpec::GilbertElliott {
            p_loss_good: 0.02,
            p_loss_bad: 0.3 + rng.random_range(0..40u32) as f64 / 100.0,
            p_g2b: 0.05,
            p_b2g: 0.25,
        },
        _ => LossSpec::Adversarial {
            budget: rng.random_range(1..=3),
        },
    }
}

fn pick_dynamics(rng: &mut StdRng) -> DynamicsSpec {
    match rng.random_range(0..4u32) {
        0 => DynamicsSpec::Static,
        1 => DynamicsSpec::Markov {
            p_fail: 0.01 + rng.random_range(0..9u32) as f64 / 100.0,
            p_repair: 0.2 + rng.random_range(0..40u32) as f64 / 100.0,
        },
        2 => DynamicsSpec::Rotating {
            k: rng.random_range(1..=2),
        },
        _ => DynamicsSpec::Periodic {
            affected: vec![0, 1],
            period: rng.random_range(8..=32),
            down_for: rng.random_range(2..=8),
        },
    }
}

fn pick_declaration(rng: &mut StdRng) -> DeclarationSpec {
    match rng.random_range(0..4u32) {
        0 => DeclarationSpec::Truthful,
        1 => DeclarationSpec::ZeroBelowR,
        2 => DeclarationSpec::FullRetention,
        _ => DeclarationSpec::RandomBelowR,
    }
}

fn pick_protocol(rng: &mut StdRng) -> ProtocolSpec {
    match rng.random_range(0..4u32) {
        0 => ProtocolSpec::Lgg,
        1 => ProtocolSpec::LggRandom,
        2 => ProtocolSpec::LggRoundRobin,
        _ => ProtocolSpec::MatchingLgg,
    }
}

/// Composes trial `i`'s scenario: one draw from every axis of the fault
/// space. Only the composition is random — the composed scenario is a
/// perfectly ordinary deterministic [`Scenario`].
pub fn compose_trial(campaign_seed: u64, i: usize, steps: u64) -> Scenario {
    let seed = trial_seed(campaign_seed, i);
    let mut rng = StdRng::seed_from_u64(seed);
    let topology = pick_topology(&mut rng);
    let n = topology
        .build()
        .expect("catalog topologies always build")
        .node_count();

    let declaration = pick_declaration(&mut rng);
    // Lying is only observable with R > 0 and a generalized node to do
    // the lying, so liar trials force both.
    let lying = declaration != DeclarationSpec::Truthful;
    let retention = if lying {
        rng.random_range(1..=6)
    } else {
        rng.random_range(0..=6)
    };

    // Endpoint layout: 1-2 sources, 1-2 sinks, 0-2 generalized nodes,
    // all distinct (the builder's last-write-wins would otherwise hide a
    // draw). Small topologies get the minimum layout.
    let extra_sources = usize::from(n >= 8 && rng.random_bool(0.5));
    let extra_sinks = usize::from(n >= 8 && rng.random_bool(0.5));
    let n_generalized = if lying {
        1 + usize::from(n >= 10 && rng.random_bool(0.5))
    } else if n >= 10 {
        rng.random_range(0..=2)
    } else {
        0
    };
    let wanted = 2 + extra_sources + extra_sinks + n_generalized;
    let nodes = distinct_nodes(&mut rng, n, wanted);
    let mut it = nodes.into_iter();
    let mut sources = vec![Endpoint {
        node: it.next().expect("n >= 2"),
        rate: rng.random_range(1..=2),
    }];
    let mut sinks = vec![Endpoint {
        node: it.next().expect("n >= 2"),
        rate: rng.random_range(1..=4),
    }];
    for _ in 0..extra_sources {
        if let Some(node) = it.next() {
            sources.push(Endpoint {
                node,
                rate: rng.random_range(1..=2),
            });
        }
    }
    for _ in 0..extra_sinks {
        if let Some(node) = it.next() {
            sinks.push(Endpoint {
                node,
                rate: rng.random_range(1..=3),
            });
        }
    }
    let mut generalized = Vec::new();
    for _ in 0..n_generalized {
        if let Some(node) = it.next() {
            let r#in = rng.random_range(0..=2);
            // The spec builder rejects a generalized node with in = out = 0
            // (it would declare nothing), so force at least one rate.
            let out = if r#in == 0 {
                rng.random_range(1..=2)
            } else {
                rng.random_range(0..=2)
            };
            generalized.push(GeneralizedNode { node, r#in, out });
        }
    }

    Scenario {
        topology,
        sources,
        sinks,
        generalized,
        retention,
        protocol: pick_protocol(&mut rng),
        injection: pick_injection(&mut rng),
        loss: pick_loss(&mut rng),
        dynamics: pick_dynamics(&mut rng),
        declaration,
        extraction: if rng.random_bool(0.5) {
            crate::ExtractionSpec::Max
        } else {
            crate::ExtractionSpec::Lazy
        },
        engine: crate::EngineSpec::Auto,
        telemetry: ObserverSpec::Off,
        steps,
        seed,
        track_ages: false,
    }
}

fn classify(sc: &Scenario, steps: u64, fault: Option<FaultSpec>) -> TrialOutcome {
    match run_trial(sc, steps, fault) {
        Err(e) => TrialOutcome::BuildError(e.to_string()),
        Ok(report) => match report.outcome {
            GuardOutcome::Completed => TrialOutcome::Clean {
                steps: report.steps,
                sup_total: report.stability.sup_total,
            },
            GuardOutcome::BudgetExceeded(kind) => TrialOutcome::Budget {
                kind,
                steps: report.steps,
            },
            GuardOutcome::Violated(v) => TrialOutcome::Violated(Box::new((sc.clone(), v))),
        },
    }
}

// ---------------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------------

/// Re-runs a candidate and returns the violation iff the *same kind*
/// still triggers (a different kind means the candidate changed the
/// failure, not simplified it).
fn reproduces(
    sc: &Scenario,
    steps: u64,
    fault: Option<FaultSpec>,
    kind: simqueue::ViolationKind,
) -> Option<Violation> {
    match run_trial(sc, steps, fault) {
        Ok(GuardReport {
            outcome: GuardOutcome::Violated(v),
            ..
        }) if v.kind == kind => Some(v),
        _ => None,
    }
}

/// Halves a topology, or `None` when it is already minimal.
fn shrink_topology(t: &TopologySpec) -> Option<TopologySpec> {
    Some(match t {
        TopologySpec::Path { n } if *n > 2 => TopologySpec::Path { n: (n / 2).max(2) },
        TopologySpec::Cycle { n } if *n > 3 => TopologySpec::Cycle { n: (n / 2).max(3) },
        TopologySpec::Grid2d { rows, cols } if *rows > 2 || *cols > 2 => TopologySpec::Grid2d {
            rows: (rows / 2).max(2),
            cols: (cols / 2).max(2),
        },
        TopologySpec::Torus2d { rows, cols } if *rows > 3 || *cols > 3 => TopologySpec::Torus2d {
            rows: (rows / 2).max(3),
            cols: (cols / 2).max(3),
        },
        TopologySpec::Dumbbell { clique, bridge } if *clique > 1 || *bridge > 1 => {
            TopologySpec::Dumbbell {
                clique: (clique / 2).max(1),
                bridge: (bridge / 2).max(1),
            }
        }
        TopologySpec::LayeredDiamond { layers, width } if *layers > 1 || *width > 1 => {
            TopologySpec::LayeredDiamond {
                layers: (layers / 2).max(1),
                width: (width / 2).max(1),
            }
        }
        TopologySpec::LeafSpine {
            leaves,
            spines,
            trunks,
            hosts_per_leaf,
        } if *leaves > 2 || *hosts_per_leaf > 1 => TopologySpec::LeafSpine {
            leaves: (leaves / 2).max(2),
            spines: *spines,
            trunks: *trunks,
            hosts_per_leaf: (hosts_per_leaf / 2).max(1),
        },
        TopologySpec::ConnectedRandom { n, extra, seed } if *n > 4 => {
            TopologySpec::ConnectedRandom {
                n: (n / 2).max(4),
                extra: extra / 2,
                seed: *seed,
            }
        }
        TopologySpec::RandomGeometric { n, radius, seed } if *n > 6 => {
            TopologySpec::RandomGeometric {
                n: (n / 2).max(6),
                radius: *radius,
                seed: *seed,
            }
        }
        _ => return None,
    })
}

/// Remaps every endpooint of `sc` into a smaller topology's node range,
/// rejecting the candidate when the remap collides (a collision would
/// silently merge two endpoints and change the failure, not shrink it).
fn remap_endpoints(sc: &Scenario, shrunk: TopologySpec) -> Option<Scenario> {
    let n = shrunk.build().ok()?.node_count() as u32;
    if n == 0 {
        return None;
    }
    let mut out = sc.clone();
    out.topology = shrunk;
    let mut seen = Vec::new();
    let mut remap = |node: u32| -> Option<u32> {
        let v = node % n;
        if seen.contains(&v) {
            None
        } else {
            seen.push(v);
            Some(v)
        }
    };
    for s in &mut out.sources {
        s.node = remap(s.node)?;
    }
    for s in &mut out.sinks {
        s.node = remap(s.node)?;
    }
    for g in &mut out.generalized {
        g.node = remap(g.node)?;
    }
    Some(out)
}

/// The shrink candidates for the current failing scenario, in order of
/// preference: drop whole fault models first (big semantic wins), then
/// endpoints, then topology size. The horizon is shrunk separately — it
/// is exact, not a candidate (prefix determinism: a violation at step
/// `s` reproduces verbatim with any horizon `> s`).
fn candidates(sc: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();
    if sc.loss != LossSpec::None {
        out.push(Scenario {
            loss: LossSpec::None,
            ..sc.clone()
        });
    }
    if sc.dynamics != DynamicsSpec::Static {
        out.push(Scenario {
            dynamics: DynamicsSpec::Static,
            ..sc.clone()
        });
    }
    if sc.declaration != DeclarationSpec::Truthful {
        out.push(Scenario {
            declaration: DeclarationSpec::Truthful,
            ..sc.clone()
        });
    }
    if sc.injection != InjectionSpec::Exact {
        out.push(Scenario {
            injection: InjectionSpec::Exact,
            ..sc.clone()
        });
    }
    if sc.extraction != crate::ExtractionSpec::Max {
        out.push(Scenario {
            extraction: crate::ExtractionSpec::Max,
            ..sc.clone()
        });
    }
    if !sc.generalized.is_empty() {
        out.push(Scenario {
            generalized: Vec::new(),
            ..sc.clone()
        });
    }
    if sc.sources.len() > 1 {
        out.push(Scenario {
            sources: sc.sources[..1].to_vec(),
            ..sc.clone()
        });
    }
    if sc.sinks.len() > 1 {
        out.push(Scenario {
            sinks: sc.sinks[..1].to_vec(),
            ..sc.clone()
        });
    }
    if let Some(shrunk) = shrink_topology(&sc.topology) {
        if let Some(remapped) = remap_endpoints(sc, shrunk) {
            out.push(remapped);
        }
    }
    out
}

/// Greedy shrink to fixpoint: repeatedly apply the first candidate that
/// still reproduces the violation (same kind), re-tightening the horizon
/// to `violation.step + 1` after every acceptance.
pub fn shrink(
    sc: &Scenario,
    steps: u64,
    fault: Option<FaultSpec>,
    violation: &Violation,
) -> (Scenario, u64, Violation) {
    let kind = violation.kind;
    let mut cur = sc.clone();
    let mut cur_steps = (violation.step + 1).min(steps);
    let mut cur_violation = violation.clone();
    // The tightened horizon itself must reproduce (it always does — the
    // trajectory prefix is deterministic — but verify rather than trust).
    match reproduces(&cur, cur_steps, fault, kind) {
        Some(v) => cur_violation = v,
        None => cur_steps = steps,
    }
    for _ in 0..MAX_SHRINK_ROUNDS {
        let mut advanced = false;
        for cand in candidates(&cur) {
            if let Some(v) = reproduces(&cand, cur_steps, fault, kind) {
                let tightened = (v.step + 1).min(cur_steps);
                cur = cand;
                cur_violation = v;
                if tightened < cur_steps {
                    if let Some(v2) = reproduces(&cur, tightened, fault, kind) {
                        cur_steps = tightened;
                        cur_violation = v2;
                    }
                }
                advanced = true;
                break;
            }
        }
        if !advanced {
            break;
        }
    }
    (cur, cur_steps, cur_violation)
}

// ---------------------------------------------------------------------------
// Campaign
// ---------------------------------------------------------------------------

/// Writes `repro` as pretty JSON into `dir`, named after the violation
/// kind and trial index.
pub fn write_reproducer(dir: &Path, trial: usize, repro: &Reproducer) -> Result<PathBuf, LggError> {
    std::fs::create_dir_all(dir)
        .map_err(|e| LggError::io(format!("cannot create {}", dir.display()), e))?;
    let path = dir.join(format!(
        "repro_{}_t{trial}.json",
        repro.violation.kind.as_str()
    ));
    let json = serde_json::to_string_pretty(repro)?;
    std::fs::write(&path, format!("{json}\n"))
        .map_err(|e| LggError::io(format!("cannot write {}", path.display()), e))?;
    Ok(path)
}

/// Runs the campaign: compose, guard, shrink, reproduce.
pub fn run_chaos(cfg: &ChaosConfig) -> Result<ChaosReport, LggError> {
    let scenarios: Vec<Scenario> = (0..cfg.trials)
        .map(|i| compose_trial(cfg.seed, i, cfg.steps))
        .collect();
    let fault = cfg
        .inject_fault
        .map(|step| FaultSpec {
            step: step.min(cfg.steps.saturating_sub(1)),
            node: 0,
            amount: 1,
        });

    eprintln!(
        "chaos: {} trials x {} steps, seed {}{}...",
        cfg.trials,
        cfg.steps,
        cfg.seed,
        if fault.is_some() {
            " (synthetic conservation fault planted)"
        } else {
            ""
        }
    );
    let outcomes: Vec<TrialOutcome> = scenarios
        .par_iter()
        .map(|sc| classify(sc, cfg.steps, fault))
        .collect();

    let digest = digest_outcomes(&outcomes);
    let mut report = ChaosReport {
        trials: cfg.trials,
        clean: 0,
        budget: 0,
        build_errors: 0,
        violations: 0,
        digest,
        reproducers: Vec::new(),
    };
    let out_dir = PathBuf::from(&cfg.out_dir);
    for (i, outcome) in outcomes.into_iter().enumerate() {
        match outcome {
            TrialOutcome::Clean { .. } => report.clean += 1,
            TrialOutcome::Budget { .. } => report.budget += 1,
            TrialOutcome::BuildError(msg) => {
                report.build_errors += 1;
                eprintln!("chaos: trial {i} failed to build: {msg}");
            }
            TrialOutcome::Violated(boxed) => {
                let (sc, violation) = *boxed;
                report.violations += 1;
                eprintln!(
                    "chaos: trial {i} VIOLATED {} at step {} — shrinking...",
                    violation.kind, violation.step
                );
                let (shrunk, steps, v) = shrink(&sc, cfg.steps, fault, &violation);
                let repro = Reproducer {
                    seed: shrunk.seed,
                    scenario: shrunk,
                    steps,
                    fault,
                    violation: v,
                };
                let path = write_reproducer(&out_dir, i, &repro)?;
                eprintln!(
                    "chaos: trial {i} shrunk to {} steps -> {}",
                    steps,
                    path.display()
                );
                report.reproducers.push(path.display().to_string());
            }
        }
    }
    Ok(report)
}

/// Replays a reproducer file. `Ok(Some(violation))` means the recorded
/// violation re-triggered (same kind and step — the deterministic-replay
/// guarantee); `Ok(None)` means the run stayed clean or failed
/// differently, i.e. the reproducer is stale.
pub fn replay_reproducer(path: &str) -> Result<Option<Violation>, LggError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| LggError::io(format!("cannot read {path}"), e))?;
    let repro: Reproducer = serde_json::from_str(&text)?;
    let report = run_trial(&repro.scenario, repro.steps, repro.fault)?;
    match report.outcome {
        GuardOutcome::Violated(v)
            if v.kind == repro.violation.kind && v.step == repro.violation.step =>
        {
            Ok(Some(v))
        }
        _ => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simqueue::ViolationKind;

    #[test]
    fn composed_trials_build_and_run() {
        // Every composed scenario across a block of trial indices must
        // build a valid traffic spec (the composer promises this).
        for i in 0..24 {
            let sc = compose_trial(7, i, 50);
            let spec = sc.traffic_spec().unwrap_or_else(|e| panic!("trial {i}: {e}"));
            assert!(spec.node_count() >= 2, "trial {i}");
            let report = run_trial(&sc, 50, None).unwrap_or_else(|e| panic!("trial {i}: {e}"));
            assert!(
                !matches!(report.outcome, GuardOutcome::Violated(_)),
                "trial {i}: clean engine must not violate: {:?}",
                report.outcome
            );
        }
    }

    #[test]
    fn composition_is_deterministic() {
        for i in [0, 3, 11] {
            assert_eq!(compose_trial(5, i, 100), compose_trial(5, i, 100));
        }
        // Different trials give different scenarios (astronomically
        // unlikely to collide on every axis).
        assert_ne!(compose_trial(5, 0, 100), compose_trial(5, 1, 100));
    }

    #[test]
    fn smoke_campaign_is_clean_and_deterministic() {
        let cfg = ChaosConfig {
            out_dir: std::env::temp_dir()
                .join("lgg_chaos_test_none")
                .display()
                .to_string(),
            ..ChaosConfig::smoke()
        };
        let a = run_chaos(&cfg).unwrap();
        assert_eq!(a.violations, 0, "clean engine must survive the campaign");
        assert_eq!(a.trials, 12);
        assert_eq!(a.clean + a.budget + a.build_errors, 12);
        let b = run_chaos(&cfg).unwrap();
        assert_eq!(a.digest, b.digest);
    }

    #[test]
    fn planted_fault_is_found_shrunk_and_replayable() {
        let dir = std::env::temp_dir().join(format!("lgg_chaos_fault_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ChaosConfig {
            trials: 2,
            steps: 200,
            seed: 9,
            out_dir: dir.display().to_string(),
            inject_fault: Some(60),
        };
        let report = run_chaos(&cfg).unwrap();
        assert_eq!(report.violations, 2, "the planted fault must be caught");
        assert_eq!(report.reproducers.len(), 2);
        for path in &report.reproducers {
            let text = std::fs::read_to_string(path).unwrap();
            let repro: Reproducer = serde_json::from_str(&text).unwrap();
            assert_eq!(repro.violation.kind, ViolationKind::Conservation);
            assert_eq!(repro.violation.step, 60);
            // The shrunk horizon is tight: just past the violation.
            assert_eq!(repro.steps, 61);
            // And the reproducer re-triggers deterministically.
            let v = replay_reproducer(path).unwrap().expect("must re-trigger");
            assert_eq!(v.step, repro.violation.step);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shrink_drops_irrelevant_fault_models() {
        // A conservation fault planted at step 30 reproduces independent
        // of loss/dynamics/declaration, so shrinking must strip them.
        let sc = Scenario {
            loss: LossSpec::Iid { p: 0.2 },
            dynamics: DynamicsSpec::Rotating { k: 1 },
            declaration: DeclarationSpec::FullRetention,
            retention: 3,
            generalized: vec![GeneralizedNode {
                node: 4,
                r#in: 1,
                out: 1,
            }],
            ..compose_trial(1, 0, 200)
        };
        let sc = Scenario {
            topology: TopologySpec::Grid2d { rows: 4, cols: 4 },
            sources: vec![Endpoint { node: 0, rate: 1 }],
            sinks: vec![Endpoint { node: 15, rate: 2 }],
            ..sc
        };
        let fault = Some(FaultSpec {
            step: 30,
            node: 1,
            amount: 2,
        });
        let v = reproduces(&sc, 200, fault, ViolationKind::Conservation)
            .expect("planted fault triggers");
        let (shrunk, steps, v2) = shrink(&sc, 200, fault, &v);
        assert_eq!(steps, 31);
        assert_eq!(v2.step, 30);
        assert_eq!(shrunk.loss, LossSpec::None);
        assert_eq!(shrunk.dynamics, DynamicsSpec::Static);
        assert_eq!(shrunk.declaration, DeclarationSpec::Truthful);
        assert!(shrunk.generalized.is_empty());
        // Topology got halved at least once.
        assert!(matches!(
            shrunk.topology,
            TopologySpec::Grid2d { rows, cols } if rows <= 2 && cols <= 2
        ));
    }

    #[test]
    fn replay_of_a_stale_reproducer_reports_none() {
        let dir = std::env::temp_dir().join(format!("lgg_chaos_stale_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // A reproducer whose scenario never violates (no fault recorded).
        let sc = compose_trial(3, 0, 50);
        let repro = Reproducer {
            seed: sc.seed,
            scenario: sc,
            steps: 50,
            fault: None,
            violation: Violation {
                kind: ViolationKind::Conservation,
                step: 10,
                detail: "stale".into(),
            },
        };
        let path = dir.join("stale.json");
        std::fs::write(&path, serde_json::to_string(&repro).unwrap()).unwrap();
        let out = replay_reproducer(path.to_str().unwrap()).unwrap();
        assert!(out.is_none(), "stale reproducer must not claim success");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
