//! Every checked-in scenario file must parse, classify and run.

use std::fs;

use lgg_cli::{run_scenario, Scenario};
use simqueue::StabilityVerdict;

fn scenarios_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

#[test]
fn all_checked_in_scenarios_parse_and_run() {
    let dir = scenarios_dir();
    let mut found = 0;
    for entry in fs::read_dir(&dir).expect("scenarios dir") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        found += 1;
        let text = fs::read_to_string(&path).unwrap();
        let mut scenario =
            Scenario::from_json(&text).unwrap_or_else(|e| panic!("{path:?}: {e}"));
        // Shrink for the test: the files ship with full-length runs.
        scenario.steps = 3000;
        let report = run_scenario(&scenario).unwrap_or_else(|e| panic!("{path:?}: {e}"));
        assert!(report.metrics.steps == 3000, "{path:?}");
        assert_ne!(
            report.stability.verdict,
            StabilityVerdict::Diverging,
            "{path:?} diverged: these showcase scenarios are all feasible-loaded"
        );
    }
    assert!(found >= 4, "expected the shipped scenario files, found {found}");
}
