//! The whole paper, end to end: every registered experiment must run in
//! quick mode, pass its shape criterion, and serialize.
//!
//! This is the aggregate CI gate behind `EXPERIMENTS.md` — if any claim of
//! the paper stops reproducing, this test names it.

use experiments::{run_experiment, ALL_IDS};

#[test]
fn every_registered_experiment_reproduces_in_quick_mode() {
    let mut failures = Vec::new();
    for id in ALL_IDS {
        let report = run_experiment(id, true).expect("registered id");
        assert_eq!(report.id, id);
        // Serialization must round-trip (the harness writes these files).
        let json = serde_json::to_string(&report).unwrap();
        let back: experiments::ExperimentReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        if !report.pass {
            failures.push(format!("{id}:\n{}", report.markdown()));
        }
    }
    assert!(
        failures.is_empty(),
        "experiments failed to reproduce:\n{}",
        failures.join("\n")
    );
}

#[test]
fn experiment_ids_are_unique_and_consistent() {
    let mut ids: Vec<_> = ALL_IDS.to_vec();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), ALL_IDS.len(), "duplicate experiment ids");
    // The four figures plus fifteen e-experiments.
    assert_eq!(ALL_IDS.len(), 19);
}
