//! Golden-trace regression: the JSONL event stream of the built-in smoke
//! scenario is locked byte-for-byte against a checked-in fixture.
//!
//! The trace schema is an external interface (`lgg-sim trace` output is
//! meant to be consumed by other tooling), so *any* change to event
//! names, field names, field order, number formatting, or emission order
//! shows up here as a diff instead of silently breaking downstream
//! parsers. The fixture is small on purpose: 150 steps of a 3×3 grid
//! with a lying R-generalized relay, i.i.d. loss and a rotating link
//! outage under the density-adaptive engine — enough to cover every
//! event kind except `plan-rejected` (covered separately below: LGG
//! never overdraws, so it needs a flooding protocol).

use lgg_cli::{capture_trace, trace_smoke_scenario};

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("golden/trace_small.jsonl")
}

#[test]
fn smoke_trace_matches_golden_fixture() {
    let sc = trace_smoke_scenario();
    let bytes = capture_trace(&sc, sc.steps, 1).expect("smoke scenario traces");
    let golden = std::fs::read(golden_path()).expect("tests/golden/trace_small.jsonl exists");
    if bytes != golden {
        // Find the first diverging line for a readable failure.
        let new_text = String::from_utf8_lossy(&bytes);
        let old_text = String::from_utf8_lossy(&golden);
        let (mut line_no, mut old_line, mut new_line) = (0usize, "", "");
        for (i, (o, n)) in old_text.lines().zip(new_text.lines()).enumerate() {
            if o != n {
                (line_no, old_line, new_line) = (i + 1, o, n);
                break;
            }
        }
        panic!(
            "trace output changed from the golden fixture \
             (first diff at line {line_no}:\n  golden: {old_line}\n  new:    {new_line}\n\
             golden has {} lines, new has {} lines).\n\
             If the schema change is intentional, regenerate with:\n  \
             cargo run -p lgg-cli --bin lgg-sim -- trace --smoke --out tests/golden/trace_small.jsonl",
            old_text.lines().count(),
            new_text.lines().count(),
        );
    }
}

#[test]
fn flood_protocol_traces_plan_rejections() {
    // Phase 4's event kind: LGG never overdraws, so the smoke fixture
    // cannot contain `plan-rejected`. Flood plans one transmission per
    // incident link regardless of queue size, and the engine's validator
    // rejects the overdraw — every rejection must be visible in the
    // trace.
    let sc = lgg_cli::Scenario::from_json(
        r#"{
            "topology": {"kind": "grid2d", "rows": 3, "cols": 3},
            "sources": [{"node": 0, "rate": 1}],
            "sinks": [{"node": 8, "rate": 1}],
            "protocol": "flood",
            "steps": 30,
            "seed": 3
        }"#,
    )
    .unwrap();
    let bytes = capture_trace(&sc, sc.steps, 1).unwrap();
    let text = String::from_utf8(bytes).unwrap();
    assert!(
        text.lines().any(|l| l.contains("\"event\":\"plan-rejected\"")),
        "flood overdraw produced no plan-rejected events"
    );
}

#[test]
fn golden_fixture_covers_every_fixed_mode_event_kind() {
    let golden = std::fs::read_to_string(golden_path()).unwrap();
    for kind in [
        "link-up",
        "link-down",
        "injection",
        "declaration-lie",
        "transmission",
        "loss",
        "extraction",
        "sample",
        "engine-switch",
    ] {
        let tag = format!("\"event\":\"{kind}\"");
        assert!(
            golden.lines().any(|l| l.contains(&tag)),
            "golden fixture lost its {kind} coverage"
        );
    }
}
