//! Integration: packet conservation and plan legality across the whole
//! protocol × injection × loss matrix, property-tested.

use lgg_core::baselines::{Flood, HeightRouting, MaxFlowRouting, RandomForward, ShortestPathRouting};
use lgg_core::interference::MatchingLgg;
use lgg_core::{Lgg, TieBreak};
use mgraph::generators;
use netmodel::{TrafficSpec, TrafficSpecBuilder};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use simqueue::declare::{FullRetention, ZeroBelowRetention};
use simqueue::dynamic::{MarkovTopology, RotatingOutage};
use simqueue::injection::{BernoulliInjection, BurstInjection, OnOffInjection, ScaledInjection};
use simqueue::loss::{AdversarialLoss, GilbertElliottLoss, IidLoss};
use simqueue::{HistoryMode, LazyExtraction, RoutingProtocol, SimulationBuilder};

fn random_spec(seed: u64, n: usize) -> TrafficSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = generators::connected_random(n, n / 2, &mut rng);
    TrafficSpecBuilder::new(g)
        .source(0, 2)
        .sink((n - 1) as u32, 3)
        .build()
        .unwrap()
}

fn protocol(idx: usize, spec: &TrafficSpec) -> Box<dyn RoutingProtocol> {
    match idx {
        0 => Box::new(Lgg::new()),
        1 => Box::new(Lgg::with_tie_break(TieBreak::Random, 5)),
        2 => Box::new(MaxFlowRouting::new(spec)),
        3 => Box::new(ShortestPathRouting::new(spec)),
        4 => Box::new(Flood),
        5 => Box::new(RandomForward::new(9)),
        6 => Box::new(HeightRouting::new()),
        _ => Box::new(MatchingLgg::new()),
    }
}

fn injection(idx: usize) -> Box<dyn simqueue::injection::InjectionProcess> {
    match idx {
        0 => Box::new(simqueue::injection::ExactInjection),
        1 => Box::new(ScaledInjection::new(1, 3)),
        2 => Box::new(BernoulliInjection::new(0.6)),
        3 => Box::new(OnOffInjection::new(0.1, 0.3)),
        _ => Box::new(BurstInjection {
            burst: 4,
            quiet: 4,
            burst_amount: 1,
        }),
    }
}

fn dynamics(idx: usize) -> Box<dyn simqueue::dynamic::TopologyProcess> {
    match idx {
        0 => Box::new(simqueue::dynamic::StaticTopology),
        1 => Box::new(MarkovTopology::new(0.05, 0.3, vec![])),
        _ => Box::new(RotatingOutage { k: 1 }),
    }
}

fn loss(idx: usize) -> Box<dyn simqueue::loss::LossModel> {
    match idx {
        0 => Box::new(simqueue::loss::NoLoss),
        1 => Box::new(IidLoss::new(0.2)),
        2 => Box::new(GilbertElliottLoss::new(0.01, 0.5, 0.1, 0.2)),
        _ => Box::new(AdversarialLoss::new(1)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// injected = stored + delivered + lost — always, for every protocol,
    /// injection process, loss model, topology process and R-generalized
    /// policy combination.
    #[test]
    fn conservation_holds_across_matrix(
        seed in 0u64..500,
        n in 6usize..25,
        proto_idx in 0usize..8,
        inj_idx in 0usize..5,
        loss_idx in 0usize..4,
        dyn_idx in 0usize..3,
        generalized in any::<bool>(),
        steps in 50u64..400,
    ) {
        let mut spec = random_spec(seed, n);
        if generalized {
            // Promote the terminals to R-generalized nodes with retention.
            spec.retention = 4;
            spec.out_rate[0] = 1; // source also extracts a little
            spec.in_rate[n - 1] = 1; // sink also injects a little
        }
        let mut builder = SimulationBuilder::new(spec.clone(), protocol(proto_idx, &spec))
            .injection(injection(inj_idx))
            .loss(loss(loss_idx))
            .topology(dynamics(dyn_idx))
            .seed(seed ^ 0xABCD)
            .history(HistoryMode::None);
        if generalized {
            builder = builder
                .declaration(if seed % 2 == 0 {
                    Box::new(FullRetention)
                } else {
                    Box::new(ZeroBelowRetention)
                })
                .extraction(Box::new(LazyExtraction));
        }
        let mut sim = builder.build();
        sim.run(steps);
        let m = sim.metrics();
        let stored: u64 = sim.queues().iter().sum();
        prop_assert_eq!(
            m.injected,
            stored + m.delivered + m.lost,
            "proto {} inj {} loss {} dyn {} gen {}",
            proto_idx,
            inj_idx,
            loss_idx,
            dyn_idx,
            generalized
        );
        // Link accounting matches the send counter.
        prop_assert_eq!(m.link_sends.iter().sum::<u64>(), m.sent);
        // Every transmission either delivered somewhere or lost; totals
        // can never exceed what entered the network.
        prop_assert!(m.delivered + m.lost <= m.injected + 0);
        prop_assert!(m.sup_total as u128 <= m.injected as u128);
    }

    /// LGG and MatchingLgg never have a plan rejected: they are
    /// physically-correct protocols by construction.
    #[test]
    fn gradient_protocols_never_rejected(
        seed in 0u64..300,
        n in 6usize..25,
        matching in any::<bool>(),
        steps in 50u64..300,
    ) {
        let spec = random_spec(seed, n);
        let proto: Box<dyn RoutingProtocol> = if matching {
            Box::new(MatchingLgg::new())
        } else {
            Box::new(Lgg::new())
        };
        let mut sim = SimulationBuilder::new(spec, proto)
            .seed(seed)
            .history(HistoryMode::None)
            .build();
        sim.run(steps);
        prop_assert_eq!(sim.metrics().rejected_plans, 0);
    }

    /// Determinism across the full stack: identical seeds give identical
    /// trajectories for any protocol/injection/loss combination.
    #[test]
    fn full_stack_determinism(
        seed in 0u64..200,
        proto_idx in 0usize..8,
        inj_idx in 0usize..4,
        loss_idx in 0usize..4,
    ) {
        let spec = random_spec(seed, 12);
        let go = || {
            let mut sim = SimulationBuilder::new(spec.clone(), protocol(proto_idx, &spec))
                .injection(injection(inj_idx))
                .loss(loss(loss_idx))
                .seed(seed)
                .history(HistoryMode::None)
                .build();
            sim.run(200);
            (sim.queues().to_vec(), sim.metrics().clone())
        };
        let (q1, m1) = go();
        let (q2, m2) = go();
        prop_assert_eq!(q1, q2);
        prop_assert_eq!(m1, m2);
    }

    /// Losses never increase the backlog: a run with loss probability p
    /// has sup_total <= the lossless run's, on the same seed, for LGG.
    /// (This is the monotonicity intuition behind Conjecture 1; it holds
    /// statistically — we allow a small additive tolerance for scheduling
    /// noise.)
    #[test]
    fn losses_do_not_inflate_backlog(seed in 0u64..100, n in 8usize..20) {
        let spec = random_spec(seed, n);
        let sup = |p: f64| {
            let mut sim = SimulationBuilder::new(spec.clone(), Box::new(Lgg::new()))
                .loss(Box::new(IidLoss::new(p)))
                .seed(seed)
                .history(HistoryMode::None)
                .build();
            sim.run(2000);
            sim.metrics().sup_total
        };
        let lossless = sup(0.0);
        let lossy = sup(0.3);
        prop_assert!(
            lossy <= lossless + n as u64,
            "lossy sup {} vs lossless {}",
            lossy,
            lossless
        );
    }
}
