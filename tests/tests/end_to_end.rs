//! Integration: the full public-API pipeline a downstream user would run,
//! mirroring the quickstart example, plus report serialization and the
//! figure experiments.

use experiments::{run_experiment, ExperimentReport};
use lgg_core::analysis::{check_drift_bound, measure_drift};
use lgg_core::bounds::unsaturated_bounds;
use lgg_core::{Lgg, TieBreak};
use mgraph::generators;
use netmodel::{classify, Feasibility, TrafficSpecBuilder};
use simqueue::{assess_stability, HistoryMode, SimulationBuilder, StabilityVerdict};

#[test]
fn quickstart_pipeline() {
    let spec = TrafficSpecBuilder::new(generators::grid2d(5, 5))
        .source(0, 1)
        .sink(24, 4)
        .build()
        .unwrap();

    let class = classify(&spec);
    assert!(matches!(class.feasibility, Feasibility::Unsaturated { .. }));
    assert_eq!(class.f_star, 2);

    let b = unsaturated_bounds(&spec).unwrap();
    assert!(b.state_bound > 0.0);

    let mut sim = SimulationBuilder::new(spec, Box::new(Lgg::new()))
        .history(HistoryMode::Sampled(16))
        .seed(42)
        .build();
    sim.run(10_000);
    let m = sim.metrics();
    let stability = assess_stability(&m.history);
    assert_eq!(stability.verdict, StabilityVerdict::Stable);
    assert!((m.sup_pt as f64) < b.state_bound);
    assert!(m.delivery_ratio() > 0.95);
    assert_eq!(m.rejected_plans, 0);
}

#[test]
fn drift_pipeline_respects_property1_with_losses() {
    let spec = TrafficSpecBuilder::new(generators::hypercube(4))
        .source(0, 2)
        .sink(15, 4)
        .build()
        .unwrap();
    let bound = 5.0 * 16.0 * 16.0; // 5 n Δ²
    let mut sim = SimulationBuilder::new(spec, Box::new(Lgg::new()))
        .loss(Box::new(simqueue::loss::IidLoss::new(0.15)))
        .history(HistoryMode::None)
        .seed(5)
        .build();
    let samples = measure_drift(&mut sim, 5000);
    let report = check_drift_bound(&samples, bound);
    assert_eq!(report.violations, 0, "max drift {}", report.max_delta);
}

#[test]
fn all_tie_breaks_share_the_stability_region() {
    // The paper: the choice among smaller neighbors "has no impact on the
    // system stability". Saturated dumbbell, all four policies.
    let spec = TrafficSpecBuilder::new(generators::dumbbell(4, 2))
        .source(0, 1)
        .sink(9, 4)
        .build()
        .unwrap();
    for tb in TieBreak::ALL {
        let mut sim =
            SimulationBuilder::new(spec.clone(), Box::new(Lgg::with_tie_break(tb, 17)))
                .history(HistoryMode::Sampled(8))
                .seed(17)
                .build();
        sim.run(8000);
        let v = assess_stability(&sim.metrics().history).verdict;
        assert_eq!(
            v,
            StabilityVerdict::Stable,
            "tie-break {} destabilized a feasible network",
            tb.name()
        );
    }
}

#[test]
fn figure_experiments_pass_and_serialize() {
    for id in ["fig1", "fig2", "fig3", "fig4"] {
        let report = run_experiment(id, true).expect("known id");
        assert!(report.pass, "{id} failed:\n{}", report.markdown());
        let json = serde_json::to_string(&report).unwrap();
        let back: ExperimentReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
        assert!(report.markdown().contains(&format!("## {id}")));
    }
}

#[test]
fn metrics_serialize_for_downstream_tooling() {
    let spec = TrafficSpecBuilder::new(generators::path(4))
        .source(0, 1)
        .sink(3, 1)
        .build()
        .unwrap();
    let mut sim = SimulationBuilder::new(spec, Box::new(Lgg::new()))
        .history(HistoryMode::Sampled(4))
        .build();
    sim.run(100);
    let json = serde_json::to_string(sim.metrics()).unwrap();
    let back: simqueue::Metrics = serde_json::from_str(&json).unwrap();
    assert_eq!(&back, sim.metrics());
}
