//! Integration: the Section V-C decomposition machinery against random
//! bottleneck topologies, end to end (flow → cut → split → simulate).

use lgg_core::Lgg;
use mgraph::{generators, MultiGraphBuilder, NodeId};
use netmodel::{classify, decompose_at_cut, find_interior_min_cut, TrafficSpec, TrafficSpecBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simqueue::{assess_stability, HistoryMode, SimulationBuilder, StabilityVerdict};

/// Two random blobs joined by a `width`-link bottleneck, saturated.
fn bottleneck_spec(seed: u64, width: usize) -> TrafficSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let left = generators::connected_random(8, 8, &mut rng);
    let right = generators::connected_random(8, 8, &mut rng);
    let mut b = MultiGraphBuilder::with_nodes(16);
    for (g, off) in [(&left, 0u32), (&right, 8u32)] {
        for e in g.edges() {
            let (u, v) = g.endpoints(e);
            b.add_edge(NodeId::new(u.raw() + off), NodeId::new(v.raw() + off))
                .unwrap();
        }
    }
    for i in 0..width {
        let l = rng.random_range(0..8);
        let r = rng.random_range(8..16);
        let _ = i;
        b.add_edge(NodeId::new(l), NodeId::new(r)).unwrap();
    }
    TrafficSpecBuilder::new(b.build())
        .source(0, width as u64)
        .sink(15, 2 * width as u64)
        .build()
        .unwrap()
}

fn stable(spec: &TrafficSpec, steps: u64) -> bool {
    let mut sim = SimulationBuilder::new(spec.clone(), Box::new(Lgg::new()))
        .history(HistoryMode::Sampled(8))
        .seed(3)
        .build();
    sim.run(steps);
    assess_stability(&sim.metrics().history).verdict != StabilityVerdict::Diverging
}

#[test]
fn random_bottlenecks_decompose_into_feasible_stable_parts() {
    let mut tested = 0;
    for seed in 0..12u64 {
        let width = 1 + (seed as usize % 3);
        let spec = bottleneck_spec(seed, width);
        let class = classify(&spec);
        if !class.feasibility.is_feasible() {
            continue; // random bottleneck placement may under-provision
        }
        let Some(side) = find_interior_min_cut(&spec) else {
            continue; // min cut may sit at a terminal for some draws
        };
        tested += 1;

        let dec = decompose_at_cut(&spec, &side, 0);
        // Structural invariants.
        assert_eq!(
            dec.a_nodes.len() + dec.b_nodes.len(),
            spec.node_count(),
            "seed {seed}: partition must cover V"
        );
        // Rate bookkeeping: B' gains exactly the crossing links as inflow,
        // A' gains them as outflow.
        let b_extra: u64 = dec.b_spec.arrival_rate()
            - dec
                .b_nodes
                .iter()
                .map(|&v| spec.in_rate(v))
                .sum::<u64>();
        let a_extra: u64 = dec.a_spec.extraction_rate()
            - dec
                .a_nodes
                .iter()
                .map(|&v| spec.out_rate(v))
                .sum::<u64>();
        assert_eq!(b_extra, dec.crossing_edges as u64, "seed {seed}");
        assert_eq!(a_extra, dec.crossing_edges as u64, "seed {seed}");

        // The paper's feasibility transfer.
        assert!(
            classify(&dec.b_spec).feasibility.is_feasible(),
            "seed {seed}: B' infeasible"
        );
        assert!(
            classify(&dec.a_spec).feasibility.is_feasible(),
            "seed {seed}: A' infeasible"
        );

        // And the stability transfer, executably.
        assert!(stable(&spec, 4000), "seed {seed}: G unstable");
        assert!(stable(&dec.b_spec, 4000), "seed {seed}: B' unstable");
        assert!(stable(&dec.a_spec, 4000), "seed {seed}: A' unstable");
    }
    assert!(tested >= 5, "only {tested} decomposable draws");
}

#[test]
fn decomposition_is_consistent_with_cut_size() {
    let spec = TrafficSpecBuilder::new(generators::dumbbell(5, 3))
        .source(0, 1)
        .sink(12, 5)
        .build()
        .unwrap();
    let side = find_interior_min_cut(&spec).expect("interior cut");
    let dec = decompose_at_cut(&spec, &side, 2);
    assert_eq!(
        dec.crossing_edges,
        mgraph::ops::cut_size(&spec.graph, &side)
    );
    // The dumbbell's bridge has capacity 1.
    assert_eq!(dec.crossing_edges, 1);
    // Retention propagates to A' only.
    assert_eq!(dec.a_spec.retention, 2);
    assert_eq!(dec.b_spec.retention, 0);
}

#[test]
fn nested_decomposition_terminates() {
    // Apply the induction twice: decompose, then decompose B' again if it
    // still has an interior cut — sizes must strictly shrink (the paper's
    // induction variable).
    let spec = TrafficSpecBuilder::new(generators::dumbbell(6, 6))
        .source(0, 1)
        .sink(17, 6)
        .build()
        .unwrap();
    let mut current = spec;
    let mut sizes = vec![current.node_count()];
    for _ in 0..4 {
        let Some(side) = find_interior_min_cut(&current) else {
            break;
        };
        let dec = decompose_at_cut(&current, &side, 1);
        assert!(dec.b_spec.node_count() < current.node_count());
        sizes.push(dec.b_spec.node_count());
        current = dec.b_spec;
        if !classify(&current).feasibility.is_feasible() {
            panic!("induction produced an infeasible part");
        }
    }
    assert!(sizes.len() >= 2, "at least one decomposition step expected");
    assert!(sizes.windows(2).all(|w| w[1] < w[0]));
}
