//! Cross-thread-count determinism: the work-stealing pool must never
//! change what any computation produces, only how fast it runs.
//!
//! Each test runs the same workload pinned to one worker and again across
//! several workers (via `parpool::set_thread_override`, the programmatic
//! form of `LGG_THREADS`) and requires byte-identical serialized output.
//! CI additionally re-runs this whole file under `LGG_THREADS=1` and
//! `LGG_THREADS=4` (see `scripts/ci.sh`), so the env-var path — which the
//! override takes precedence over only while a test holds it — is
//! exercised end to end as well.
//!
//! The tests share one global override via a mutex: the override is
//! process-wide state, and cargo runs tests in this file concurrently.

use std::sync::{Mutex, OnceLock};

use experiments::{run_experiment, ALL_IDS};
use lgg_cli::{capture_trace, sweep_digest, trace_smoke_scenario, SweepConfig};

/// Serializes access to the process-wide thread-count override.
fn override_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Runs `f` with the pool pinned to `threads` workers, restoring the
/// default (env/cores) resolution afterwards.
fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    let _guard = override_lock().lock().expect("override lock");
    parpool::set_thread_override(Some(threads));
    let r = f();
    parpool::set_thread_override(None);
    r
}

/// Worker count for the multi-threaded leg: enough to force real
/// stealing and interleaving even on a single-core machine.
const WIDE: usize = 4;

#[test]
fn experiment_suite_is_thread_count_independent() {
    // Every experiment id, quick mode, serialized exactly as
    // `experiments --out` writes it.
    let run_all = || -> Vec<String> {
        ALL_IDS
            .iter()
            .map(|id| {
                let report = run_experiment(id, true).expect("known id");
                serde_json::to_string_pretty(&report).expect("serializes")
            })
            .collect()
    };
    let narrow = with_threads(1, run_all);
    let wide = with_threads(WIDE, run_all);
    for (id, (a, b)) in ALL_IDS.iter().zip(narrow.iter().zip(&wide)) {
        assert_eq!(a, b, "{id}: JSON diverged between 1 and {WIDE} threads");
    }
}

#[test]
fn sweep_grid_digest_is_thread_count_independent() {
    let cfg = SweepConfig {
        smoke: true,
        scenario_dir: concat!(env!("CARGO_MANIFEST_DIR"), "/../scenarios").into(),
        threads: None,
    };
    let narrow = with_threads(1, || sweep_digest(&cfg).expect("sweep runs"));
    let wide = with_threads(WIDE, || sweep_digest(&cfg).expect("sweep runs"));
    assert_eq!(
        narrow, wide,
        "sweep digest diverged between 1 and {WIDE} threads"
    );
}

#[test]
fn jsonl_trace_is_thread_count_independent() {
    // The event trace is an externally consumed byte stream, so its
    // determinism bar is byte equality, not just equal aggregates. A
    // single simulation never crosses threads today, but the trace runs
    // under whatever pool configuration the process has — pin it both
    // ways to lock the contract.
    let sc = trace_smoke_scenario();
    let capture = || capture_trace(&sc, sc.steps, 1).expect("smoke scenario traces");
    let narrow = with_threads(1, capture);
    let wide = with_threads(WIDE, capture);
    assert!(!narrow.is_empty());
    assert_eq!(
        narrow, wide,
        "JSONL trace bytes diverged between 1 and {WIDE} threads"
    );
}

#[test]
fn pool_reports_at_least_one_worker() {
    assert!(parpool::max_threads() >= 1);
    assert_eq!(with_threads(3, parpool::max_threads), 3);
}
