//! End-to-end resume fidelity: an interrupted-then-resumed run must be
//! bit-for-bit identical to the uninterrupted one — same summary, same
//! trace bytes — and that equivalence must hold at every pool width.
//!
//! This drives the same `run_with_checkpoints` entry point the `lgg-sim
//! run` binary uses, so the CLI surface (checkpoint period, directory,
//! resume, trace truncation-on-resume) is what gets certified, not just
//! the engine-level payload round trip (which `simqueue`'s own property
//! tests already cover). The thread-count legs mirror `determinism.rs`:
//! CI re-runs this file under `LGG_THREADS=1` and `LGG_THREADS=4` too.

use std::fs;
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};

use lgg_cli::{run_with_checkpoints, RunConfig};

/// Serializes access to the process-wide thread-count override.
fn override_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Runs `f` with the pool pinned to `threads` workers, restoring the
/// default (env/cores) resolution afterwards.
fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    let _guard = override_lock().lock().expect("override lock");
    parpool::set_thread_override(Some(threads));
    let r = f();
    parpool::set_thread_override(None);
    r
}

const WIDE: usize = 4;

/// A busy scenario: loss, rotating outages, a lying R-generalized relay
/// and lazy extraction, so every checkpointed phase state matters.
const SCENARIO: &str = r#"{
    "topology": {"kind": "grid2d", "rows": 4, "cols": 4},
    "sources": [{"node": 0, "rate": 2}],
    "sinks": [{"node": 15, "rate": 3}],
    "generalized": [{"node": 5, "in": 1, "out": 0}],
    "retention": 4,
    "declaration": "full-retention",
    "extraction": "lazy",
    "protocol": "lgg",
    "injection": {"kind": "bernoulli", "p": 0.8},
    "loss": {"kind": "iid", "p": 0.1},
    "dynamics": {"kind": "rotating", "k": 2},
    "steps": 600,
    "seed": 99,
    "track_ages": true
}"#;

struct Workspace {
    base: PathBuf,
    scenario: String,
}

impl Workspace {
    fn new(tag: &str) -> Self {
        let base = std::env::temp_dir().join(format!(
            "lgg_resume_e2e_{}_{tag}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&base);
        fs::create_dir_all(&base).expect("temp workspace");
        let scenario = base.join("scenario.json");
        fs::write(&scenario, SCENARIO).expect("write scenario");
        Workspace {
            scenario: scenario.to_string_lossy().into_owned(),
            base,
        }
    }

    fn path(&self, name: &str) -> String {
        self.base.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for Workspace {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.base);
    }
}

/// Full run vs. interrupted-at-`cut`-then-resumed run, byte-compared.
fn assert_resume_is_bit_for_bit(tag: &str) {
    let ws = Workspace::new(tag);

    let full = run_with_checkpoints(&RunConfig {
        scenario_path: ws.scenario.clone(),
        trace: Some(ws.path("full.jsonl")),
        sample_stride: 1,
        ..RunConfig::default()
    })
    .expect("uninterrupted run");
    assert_eq!(full.steps, 600);

    let part = run_with_checkpoints(&RunConfig {
        scenario_path: ws.scenario.clone(),
        steps: Some(250),
        checkpoint_every: Some(100),
        checkpoint_dir: Some(ws.path("ckpts")),
        trace: Some(ws.path("part.jsonl")),
        sample_stride: 1,
        ..RunConfig::default()
    })
    .expect("interrupted run");
    assert_eq!(part.steps, 250);

    let resumed = run_with_checkpoints(&RunConfig {
        scenario_path: ws.scenario.clone(),
        checkpoint_every: Some(100),
        checkpoint_dir: Some(ws.path("ckpts")),
        resume: true,
        trace: Some(ws.path("part.jsonl")),
        sample_stride: 1,
        ..RunConfig::default()
    })
    .expect("resumed run");
    assert_eq!(resumed.resumed_from, Some(250));
    assert_eq!(resumed.steps, 600);
    assert_eq!(resumed.injected, full.injected);
    assert_eq!(resumed.delivered, full.delivered);
    assert_eq!(resumed.lost, full.lost);
    assert_eq!(resumed.final_pt, full.final_pt);
    assert_eq!(resumed.sup_pt, full.sup_pt);

    let a = fs::read(ws.path("full.jsonl")).expect("full trace");
    let b = fs::read(ws.path("part.jsonl")).expect("resumed trace");
    assert!(!a.is_empty());
    assert_eq!(a, b, "resumed trace bytes diverged from uninterrupted run");
}

#[test]
fn resume_is_bit_for_bit_single_thread() {
    with_threads(1, || assert_resume_is_bit_for_bit("narrow"));
}

#[test]
fn resume_is_bit_for_bit_wide_pool() {
    with_threads(WIDE, || assert_resume_is_bit_for_bit("wide"));
}

#[test]
fn resume_crosses_thread_counts() {
    // A checkpoint written under one pool width must resume under
    // another with the same bytes: snapshots carry no thread-dependent
    // state. Run the interrupted half at 1 thread and finish at WIDE,
    // comparing against an uninterrupted single-thread reference.
    let ws = Workspace::new("cross");

    let full = with_threads(1, || {
        run_with_checkpoints(&RunConfig {
            scenario_path: ws.scenario.clone(),
            trace: Some(ws.path("full.jsonl")),
            sample_stride: 1,
            ..RunConfig::default()
        })
        .expect("uninterrupted run")
    });

    with_threads(1, || {
        run_with_checkpoints(&RunConfig {
            scenario_path: ws.scenario.clone(),
            steps: Some(300),
            checkpoint_every: Some(150),
            checkpoint_dir: Some(ws.path("ckpts")),
            trace: Some(ws.path("part.jsonl")),
            sample_stride: 1,
            ..RunConfig::default()
        })
        .expect("interrupted run")
    });

    let resumed = with_threads(WIDE, || {
        run_with_checkpoints(&RunConfig {
            scenario_path: ws.scenario.clone(),
            checkpoint_every: Some(150),
            checkpoint_dir: Some(ws.path("ckpts")),
            resume: true,
            trace: Some(ws.path("part.jsonl")),
            sample_stride: 1,
            ..RunConfig::default()
        })
        .expect("resumed run")
    });
    assert_eq!(resumed.resumed_from, Some(300));
    assert_eq!(resumed.sup_pt, full.sup_pt);

    let a = fs::read(ws.path("full.jsonl")).expect("full trace");
    let b = fs::read(ws.path("part.jsonl")).expect("resumed trace");
    assert_eq!(a, b, "trace bytes diverged across thread counts");
}
