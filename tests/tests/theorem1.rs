//! Integration: Theorem 1 end to end, across randomly generated networks.
//!
//! Feasible arrival rates ⇒ LGG keeps the backlog bounded; arrival rates
//! beyond `f*` ⇒ the backlog diverges at least at the excess rate. The
//! specs are generated randomly and classified with the max-flow machinery,
//! so this exercises every crate in the workspace in one pass.

use lgg_core::bounds::divergence_rate;
use lgg_core::Lgg;
use mgraph::{generators, ops, NodeId};
use netmodel::{classify, Feasibility, TrafficSpec, TrafficSpecBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simqueue::{assess_stability, HistoryMode, SimulationBuilder, StabilityVerdict};

/// Random connected network with one random source and one random sink of
/// generous extraction capacity.
fn random_spec(seed: u64) -> TrafficSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.random_range(8..40);
    let extra = rng.random_range(0..n);
    let g = generators::connected_random(n, extra, &mut rng);
    let src = rng.random_range(0..n as u32);
    let mut dst = rng.random_range(0..(n - 1) as u32);
    if dst >= src {
        dst += 1;
    }
    let in_rate = rng.random_range(1..=3u64);
    TrafficSpecBuilder::new(g)
        .source(src, in_rate)
        .sink(dst, in_rate + rng.random_range(0..=2))
        .build()
        .unwrap()
}

fn run_verdict(spec: &TrafficSpec, steps: u64) -> (StabilityVerdict, f64) {
    let mut sim = SimulationBuilder::new(spec.clone(), Box::new(Lgg::new()))
        .history(HistoryMode::Sampled((steps / 1024).max(1)))
        .seed(99)
        .build();
    sim.run(steps);
    let report = assess_stability(&sim.metrics().history);
    (report.verdict, report.slope)
}

#[test]
fn feasible_random_networks_are_stable() {
    let mut feasible_checked = 0;
    for seed in 0..40u64 {
        let spec = random_spec(seed);
        let class = classify(&spec);
        if !class.feasibility.is_feasible() {
            continue;
        }
        feasible_checked += 1;
        let (verdict, slope) = run_verdict(&spec, 6000);
        assert_ne!(
            verdict,
            StabilityVerdict::Diverging,
            "seed {seed}: feasible network diverged (slope {slope}, class {class:?})"
        );
    }
    assert!(feasible_checked >= 10, "only {feasible_checked} feasible draws");
}

#[test]
fn infeasible_random_networks_diverge_at_excess_rate() {
    let mut infeasible_checked = 0;
    for seed in 100..160u64 {
        let mut spec = random_spec(seed);
        // Force infeasibility: crank the source far beyond its degree.
        let src = spec.sources().next().unwrap();
        let crank = spec.graph.degree(src) as u64 + 3;
        spec.in_rate[src.index()] = crank;
        for v in spec.graph.nodes() {
            if spec.out_rate[v.index()] > 0 {
                spec.out_rate[v.index()] = crank;
            }
        }
        let class = classify(&spec);
        let Feasibility::Infeasible { .. } = class.feasibility else {
            continue;
        };
        infeasible_checked += 1;
        let excess = divergence_rate(&spec).unwrap();
        let (verdict, slope) = run_verdict(&spec, 6000);
        assert_eq!(
            verdict,
            StabilityVerdict::Diverging,
            "seed {seed}: infeasible network did not diverge"
        );
        assert!(
            slope >= 0.9 * excess as f64,
            "seed {seed}: slope {slope} below excess {excess}"
        );
    }
    assert!(infeasible_checked >= 20, "only {infeasible_checked} infeasible draws");
}

#[test]
fn stability_frontier_on_parallel_links() {
    // parallel_pair(k): f* = k exactly. in = k stable (saturated);
    // in = k+1 diverges with slope ~1.
    for k in [1usize, 3, 5] {
        let stable_spec = TrafficSpecBuilder::new(generators::parallel_pair(k))
            .source(0, k as u64)
            .sink(1, k as u64)
            .build()
            .unwrap();
        let (v, _) = run_verdict(&stable_spec, 6000);
        assert_eq!(v, StabilityVerdict::Stable, "k={k} at capacity");

        let over_spec = TrafficSpecBuilder::new(generators::parallel_pair(k))
            .source(0, k as u64 + 1)
            .sink(1, k as u64 + 1)
            .build()
            .unwrap();
        let (v, slope) = run_verdict(&over_spec, 6000);
        assert_eq!(v, StabilityVerdict::Diverging, "k={k} over capacity");
        assert!((slope - 1.0).abs() < 0.2, "k={k} slope {slope}");
    }
}

#[test]
fn multi_source_multi_sink_grid_stable_at_exact_capacity() {
    // Two corner sources at rate 2 each (= their degree), sinks wide open:
    // saturated but feasible.
    let spec = TrafficSpecBuilder::new(generators::grid2d(5, 5))
        .source(0, 2)
        .source(4, 2)
        .sink(20, 4)
        .sink(24, 4)
        .build()
        .unwrap();
    let class = classify(&spec);
    assert!(class.feasibility.is_feasible());
    let (v, _) = run_verdict(&spec, 20_000);
    assert_eq!(v, StabilityVerdict::Stable);
}

#[test]
fn disconnected_source_is_infeasible_and_diverges() {
    let mut b = mgraph::MultiGraphBuilder::with_nodes(4);
    b.add_edge(NodeId::new(0), NodeId::new(1)).unwrap();
    // nodes 2-3 disconnected from 0-1
    b.add_edge(NodeId::new(2), NodeId::new(3)).unwrap();
    let g = b.build();
    assert!(!ops::is_connected(&g));
    let spec = TrafficSpecBuilder::new(g)
        .source(0, 1)
        .sink(3, 1)
        .build()
        .unwrap();
    let class = classify(&spec);
    assert!(!class.feasibility.is_feasible());
    assert_eq!(class.f_star, 0);
    let (v, slope) = run_verdict(&spec, 4000);
    assert_eq!(v, StabilityVerdict::Diverging);
    assert!((slope - 1.0).abs() < 0.1);
}
