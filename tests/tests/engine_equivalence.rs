//! Integration: the sparse active-set engine and the dense reference
//! engine are observationally identical on every checked-in scenario file.
//!
//! The scenario corpus spans the surface the unit tests reach piecewise:
//! matching-LGG interference, Gilbert–Elliott and adversarial loss,
//! R-generalized lying with lazy extraction, bursty injection, and
//! topology dynamics. Running both engines over each file and demanding
//! equality of queues, metrics (full sampled history included) and
//! latency statistics is the end-to-end form of the bit-for-bit
//! requirement.

use lgg_cli::{Scenario, ScenarioObserver, SimOverrides};
use simqueue::{EngineMode, HistoryMode, Simulation};

/// Steps per scenario: enough to cross warm-up transients, burst cycles
/// and outage periods, small enough to keep the suite fast.
const STEPS: u64 = 3_000;

fn scenario_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../scenarios")
}

fn run(sc: &Scenario, mode: EngineMode) -> Simulation<ScenarioObserver> {
    let mut sim = sc
        .build(SimOverrides {
            engine: Some(mode),
            history: Some(HistoryMode::Sampled(64)),
            ..SimOverrides::default()
        })
        .expect("scenario builds");
    sim.run(STEPS);
    sim
}

#[test]
fn sparse_and_dense_engines_agree_on_all_scenarios() {
    let dir = scenario_dir();
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).expect("scenarios/ exists") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).unwrap();
        let sc = Scenario::from_json(&text)
            .unwrap_or_else(|e| panic!("{name}: {e}"));

        let sparse = run(&sc, EngineMode::SparseActive);
        let dense = run(&sc, EngineMode::DenseReference);
        let auto = run(&sc, EngineMode::Auto);

        assert_eq!(sparse.queues(), dense.queues(), "{name}: queues differ");
        assert_eq!(sparse.metrics(), dense.metrics(), "{name}: metrics differ");
        assert_eq!(
            sparse.latency_stats(),
            dense.latency_stats(),
            "{name}: latency stats differ"
        );
        assert_eq!(auto.queues(), sparse.queues(), "{name}: auto queues differ");
        assert_eq!(auto.metrics(), sparse.metrics(), "{name}: auto metrics differ");
        assert_eq!(
            auto.latency_stats(),
            sparse.latency_stats(),
            "{name}: auto latency stats differ"
        );
        seen += 1;
    }
    assert!(seen >= 4, "scenario corpus shrank: only {seen} files");
}

#[test]
fn default_engine_is_auto_and_reports_active_set() {
    let text = std::fs::read_to_string(scenario_dir().join("saturated_dumbbell.json")).unwrap();
    let sc = Scenario::from_json(&text).unwrap();
    let mut sim = sc.build(SimOverrides::default()).unwrap();
    // Scenarios without an explicit "engine" field get the adaptive mode;
    // cold networks start in the sparse regime.
    assert_eq!(sim.engine_mode(), EngineMode::Auto);
    assert_eq!(sim.effective_mode(), EngineMode::SparseActive);
    sim.run(100);
    // The saturated dumbbell keeps a backlog at the bridge: the active
    // set is non-empty but never exceeds |V|.
    let n = sim.queues().len();
    let active = sim.active_node_count();
    assert!(active > 0 && active <= n, "active = {active} of {n}");
    assert_eq!(
        active,
        sim.queues().iter().filter(|&&q| q > 0).count(),
        "active set must be exactly {{v : q > 0}}"
    );
}
