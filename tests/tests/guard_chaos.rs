//! Guard + chaos integration: the online divergence detector against the
//! offline assessor on the checked-in scenarios, the liar-declaration
//! regression scenario, and the checked-in chaos reproducer.

use std::path::{Path, PathBuf};

use lgg_cli::{replay_reproducer, Scenario};
use simqueue::{
    assess_stability, GuardConfig, GuardOutcome, HistoryMode, InvariantGuard, NoopObserver,
    OnlineStability, SimOverrides,
};

fn repo_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join(rel)
}

fn load_scenario(rel: &str) -> Scenario {
    let path = repo_path(rel);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    Scenario::from_json(&text).unwrap_or_else(|e| panic!("{rel}: {e}"))
}

const CHECKED_IN: &[&str] = &[
    "scenarios/saturated_dumbbell.json",
    "scenarios/lossy_sensor_field.json",
    "scenarios/bursty_rgen_gauntlet.json",
    "scenarios/flapping_fabric.json",
];

/// The guard's streaming divergence detector is a subsampling wrapper
/// around `assess_stability`; with capacity covering the whole trajectory
/// the two must agree *exactly* on real recorded trajectories — not just
/// on the synthetic ramps the unit tests use.
#[test]
fn online_detector_agrees_with_offline_on_checked_in_scenarios() {
    for rel in CHECKED_IN {
        let sc = load_scenario(rel);
        // Full per-step history, capped horizon: the verdict comparison
        // needs a real trajectory, not the scenario's full 30k-50k run.
        let steps = sc.steps.min(8_000);
        let mut sim = sc
            .build(SimOverrides {
                history: Some(HistoryMode::EveryStep),
                ..SimOverrides::default()
            })
            .unwrap_or_else(|e| panic!("{rel}: {e}"));
        sim.run(steps);
        let history = &sim.metrics().history;
        assert_eq!(history.len() as u64, steps, "{rel}");

        let offline = assess_stability(history);
        let mut online = OnlineStability::new(history.len());
        for s in history {
            online.push(*s);
        }
        assert_eq!(
            online.assess(),
            offline,
            "{rel}: online (full capacity) must equal offline exactly"
        );

        // Subsampled (the guard's actual memory-bounded configuration):
        // the verdict must still match on these real trajectories.
        let mut small = OnlineStability::new(256);
        for s in history {
            small.push(*s);
        }
        assert_eq!(
            small.verdict(),
            offline.verdict,
            "{rel}: subsampled online verdict diverged from offline"
        );
    }
}

/// Every checked-in scenario runs violation-free under the full guard —
/// the chaos campaign's hard invariants hold on the curated suite too.
#[test]
fn checked_in_scenarios_pass_the_guard() {
    for rel in CHECKED_IN {
        let sc = load_scenario(rel);
        let spec = sc.traffic_spec().unwrap();
        let guard = InvariantGuard::with_inner(&spec, GuardConfig::checks(), NoopObserver);
        let mut sim = sc
            .build_with_observer(
                SimOverrides {
                    history: Some(HistoryMode::None),
                    ..SimOverrides::default()
                },
                guard,
            )
            .unwrap();
        let report = sim
            .run_guarded(sc.steps.min(4_000), None, None)
            .unwrap_or_else(|e| panic!("{rel}: {e}"));
        assert!(
            matches!(report.outcome, GuardOutcome::Completed),
            "{rel}: {:?}",
            report.outcome
        );
    }
}

/// Regression: the shrunk liar-declaration scenario (full-retention
/// declarations sitting exactly on the `declared == R` legality boundary
/// of Definition 6(ii)) stays violation-free under the full guard,
/// including the declaration-legality check.
#[test]
fn liar_declaration_reproducer_stays_violation_free() {
    let sc = load_scenario("scenarios/liar_declaration_shrunk.json");
    assert_eq!(sc.retention, 5, "edge case needs R > 0");
    assert_eq!(sc.generalized.len(), 2, "edge case needs lying relays");
    let spec = sc.traffic_spec().unwrap();
    let mut cfg = GuardConfig::checks();
    cfg.divergence = true;
    let guard = InvariantGuard::with_inner(&spec, cfg, NoopObserver);
    let mut sim = sc
        .build_with_observer(SimOverrides::default(), guard)
        .unwrap();
    let report = sim.run_guarded(sc.steps, None, None).unwrap();
    assert!(
        matches!(report.outcome, GuardOutcome::Completed),
        "{:?}",
        report.outcome
    );
}

/// The checked-in chaos reproducer (a planted conservation fault, shrunk
/// by `lgg-sim run --guard --inject-fault`) must keep re-triggering the
/// recorded violation at the recorded step — the deterministic-replay
/// guarantee the whole reproducer format rests on.
#[test]
fn checked_in_reproducer_still_reproduces() {
    let path = repo_path("results/chaos/repro_conservation_fault.json");
    let v = replay_reproducer(path.to_str().unwrap())
        .unwrap_or_else(|e| panic!("{}: {e}", path.display()))
        .expect("recorded violation must re-trigger at the recorded step");
    assert_eq!(format!("{}", v.kind), "conservation");
}
