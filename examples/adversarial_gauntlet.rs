//! Adversarial gauntlet: everything the paper's model allows to go wrong,
//! at once, on a *saturated* network (zero slack — Lemma 1 does not
//! apply, only Theorem 2 via Conjecture 1 covers it).
//!
//! * the min cut is fully loaded by the maximal regime;
//! * arrivals come in bursts with compensating quiet periods
//!   (Conjecture 2's regime, dominated by the maximal one);
//! * a targeted adversary kills the most useful packet in flight every
//!   step ("this packet can be lost without any notification");
//! * the destination is R-generalized: it retains up to R packets, lies
//!   about its queue below R, and extracts as lazily as Definition 7
//!   permits.
//!
//! Conjecture 1 says: if the maximal lossless regime is stable, nothing
//! dominated by it — losses included — can destabilize LGG. Watch it hold.
//!
//! ```text
//! cargo run --release --example adversarial_gauntlet
//! ```

use lgg_core::Lgg;
use mgraph::generators;
use netmodel::{classify, TrafficSpecBuilder};
use simqueue::declare::FullRetention;
use simqueue::injection::BurstInjection;
use simqueue::loss::AdversarialLoss;
use simqueue::{assess_stability, HistoryMode, LazyExtraction, SimulationBuilder};

fn main() {
    // Saturated diamond: 4 disjoint branches, source rate 4 = min cut = 4.
    // R-generalized endpoints with retention 6.
    let spec = TrafficSpecBuilder::new(generators::layered_diamond(2, 4))
        .generalized(0, 4, 0)
        .generalized(10, 0, 4)
        .retention(6)
        .build()
        .expect("gauntlet spec");

    let class = classify(&spec);
    println!(
        "diamond: n = {}, min cut = f* = {}, {:?} (zero slack)",
        spec.node_count(),
        class.f_star,
        class.feasibility
    );
    println!(
        "retention R = {} (the destination may hoard and lie below this)",
        spec.retention
    );

    let steps = 40_000;
    let run = |label: &str, gauntlet: bool| {
        let mut builder = SimulationBuilder::new(spec.clone(), Box::new(Lgg::new()))
            .history(HistoryMode::Sampled(32))
            .seed(13);
        if gauntlet {
            builder = builder
                // bursts of in(s) = 4/step for 10 steps, then 10 silent
                // steps: a dominated (average 2 < cut 4) but spiky regime.
                .injection(Box::new(BurstInjection {
                    burst: 10,
                    quiet: 10,
                    burst_amount: 1,
                }))
                // each step, the single most useful in-flight packet dies.
                .loss(Box::new(AdversarialLoss::new(1)))
                // the destination hides its true queue and hoards R packets.
                .declaration(Box::new(FullRetention))
                .extraction(Box::new(LazyExtraction));
        }
        let mut sim = builder.build();
        sim.run(steps);
        let m = sim.metrics();
        let verdict = assess_stability(&m.history).verdict;
        println!("--- {label} ---");
        println!(
            "  verdict {verdict:?}; sup backlog {}; injected {}, delivered {} ({:.1}%), lost {}",
            m.sup_total,
            m.injected,
            m.delivered,
            100.0 * m.delivery_ratio(),
            m.lost
        );
        verdict
    };

    let base = run("maximal lossless regime (Conjecture 1 hypothesis)", false);
    let hard = run("gauntlet: bursts + targeted loss + lying lazy R-destination", true);

    println!(
        "Conjecture 1 prediction: stable hypothesis ⇒ stable under any dominated \
         behavior. observed: {base:?} ⇒ {hard:?}"
    );
    println!(
        "the adversary steals throughput (delivery < 100%) but cannot create backlog: \
         losses only ever help stability, exactly as Section III remarks"
    );
}
