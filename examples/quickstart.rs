//! Quickstart: build an S-D-network, check its feasibility, run the LGG
//! protocol, and confirm the paper's headline claim — bounded queues on a
//! feasible network.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use lgg_core::bounds::unsaturated_bounds;
use lgg_core::Lgg;
use mgraph::generators;
use netmodel::{classify, Feasibility, TrafficSpecBuilder};
use simqueue::{assess_stability, HistoryMode, SimulationBuilder};

fn main() {
    // 1. A network: a 5×5 grid; one corner injects 1 packet/step, the
    //    opposite corner can extract up to 4.
    let graph = generators::grid2d(5, 5);
    let spec = TrafficSpecBuilder::new(graph)
        .source(0, 1)
        .sink(24, 4)
        .build()
        .expect("valid S-D-network");

    // 2. Classify it: the paper's whole theory is gated on feasibility
    //    (Definition 3) and slack (Definition 4).
    let class = classify(&spec);
    println!("network: n = {}, Δ = {}", spec.node_count(), spec.max_degree());
    println!("arrival rate = {}, f* = {}", class.arrival_rate, class.f_star);
    match &class.feasibility {
        Feasibility::Unsaturated { .. } => {
            let b = unsaturated_bounds(&spec).unwrap();
            println!(
                "unsaturated with margin ε = {:.3}; Lemma 1 bounds P_t by {:.3e}",
                b.epsilon, b.state_bound
            );
        }
        Feasibility::Saturated => println!("feasible but saturated (Theorem 2 territory)"),
        Feasibility::Infeasible { max_flow, .. } => {
            println!("infeasible (max flow {max_flow}): every protocol diverges")
        }
    }

    // 3. Run LGG — each node only ever looks at its neighbors' queue
    //    lengths (Algorithm 1).
    let steps = 20_000;
    let mut sim = SimulationBuilder::new(spec, Box::new(Lgg::new()))
        .history(HistoryMode::Sampled(16))
        .seed(42)
        .build();
    sim.run(steps);

    // 4. Inspect the run.
    let m = sim.metrics();
    let stability = assess_stability(&m.history);
    println!("--- after {steps} steps of LGG ---");
    println!("verdict:        {:?}", stability.verdict);
    println!("sup_t Σ q_t(v): {}", m.sup_total);
    println!("sup_t P_t:      {}", m.sup_pt);
    println!("delivered:      {} / {} injected", m.delivered, m.injected);
    println!("mean latency:   {:.1} steps (Little's law)", m.mean_latency());
}
