//! Datacenter fabric: a leaf–spine Clos with *trunked* (parallel) links —
//! the multigraph capacity model is exactly the paper's.
//!
//! Hosts on two leaves stream traffic to egress hosts on other leaves.
//! We compare LGG against clairvoyant max-flow routing, then break a
//! trunk mid-run and watch LGG re-form its gradient while the static
//! route plan cannot adapt.
//!
//! ```text
//! cargo run --release --example datacenter_fabric
//! ```

use lgg_core::baselines::MaxFlowRouting;
use lgg_core::Lgg;
use mgraph::generators;
use netmodel::{classify, TrafficSpecBuilder};
use simqueue::dynamic::PeriodicOutage;
use simqueue::{assess_stability, HistoryMode, RoutingProtocol, SimulationBuilder};

fn main() {
    // 4 leaves, 2 spines, 2 parallel trunks per leaf-spine pair,
    // 3 hosts per leaf. Node layout: leaves 0..4, spines 4..6, hosts 6..18.
    let fabric = generators::leaf_spine(4, 2, 2, 3);
    let host = |leaf: u32, i: u32| 6 + leaf * 3 + i;

    // Sinks are the egress *leaf switches* (ids 2 and 3): a host's single
    // access link caps it at 1 pkt/step, which would bottleneck the fabric.
    let spec = TrafficSpecBuilder::new(fabric.clone())
        .source(host(0, 0), 1)
        .source(host(0, 1), 1)
        .source(host(1, 0), 1)
        .sink(2, 2)
        .sink(3, 2)
        .build()
        .expect("fabric spec");

    let class = classify(&spec);
    println!(
        "fabric: {} switches+hosts, {} links (trunked), Δ = {}",
        spec.node_count(),
        spec.graph.edge_count(),
        spec.max_degree()
    );
    println!(
        "load 3 pkt/step vs f* = {}; classification {:?}",
        class.f_star, class.feasibility
    );

    let steps = 20_000;
    // Phase 1: healthy fabric.
    for (label, protocol) in [
        ("LGG", Box::new(Lgg::new()) as Box<dyn RoutingProtocol>),
        ("max-flow routing", Box::new(MaxFlowRouting::new(&spec))),
    ] {
        let mut sim = SimulationBuilder::new(spec.clone(), protocol)
            .history(HistoryMode::Sampled(16))
            .seed(1)
            .build();
        sim.run(steps);
        let m = sim.metrics();
        println!(
            "healthy fabric, {label}: {:?}, sup backlog {}, latency {:.1}",
            assess_stability(&m.history).verdict,
            m.sup_total,
            m.mean_latency()
        );
    }

    // Phase 2: leaf-0's trunks to spine 0 flap periodically (down half the
    // time). LGG adapts hop by hop; the precomputed path plan loses the
    // capacity it was built on whenever the trunk is down.
    let mut affected = vec![false; fabric.edge_count()];
    for e in fabric.edges() {
        let (u, v) = fabric.endpoints(e);
        let pair = (u.index().min(v.index()), u.index().max(v.index()));
        if pair == (0, 4) {
            affected[e.index()] = true;
        }
    }
    let flapping = move || PeriodicOutage {
        affected: affected.clone(),
        period: 200,
        down_for: 100,
    };
    for (label, protocol) in [
        ("LGG", Box::new(Lgg::new()) as Box<dyn RoutingProtocol>),
        ("max-flow routing", Box::new(MaxFlowRouting::new(&spec))),
    ] {
        let mut sim = SimulationBuilder::new(spec.clone(), protocol)
            .topology(Box::new(flapping()))
            .history(HistoryMode::Sampled(16))
            .seed(1)
            .build();
        sim.run(steps);
        let m = sim.metrics();
        println!(
            "flapping trunk, {label}: {:?}, sup backlog {}, delivered {:.1}%",
            assess_stability(&m.history).verdict,
            m.sup_total,
            100.0 * m.delivery_ratio()
        );
    }
    println!(
        "LGG needs no reconvergence protocol: queue gradients are the routing state — \
         the localized property the paper's introduction motivates"
    );
}
