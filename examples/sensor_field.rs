//! Sensor field: the deployment that motivates localized protocols.
//!
//! A random-geometric field of sensors periodically reports readings to
//! two gateway sinks over lossy wireless links, with node-exclusive
//! interference. No routing tables, no global view — every sensor runs
//! Algorithm 1 against its neighbors' queue lengths.
//!
//! ```text
//! cargo run --release --example sensor_field
//! ```

use lgg_core::interference::MatchingLgg;
use lgg_core::Lgg;
use mgraph::{generators, ops, NodeId};
use netmodel::{classify, TrafficSpecBuilder};
use rand::rngs::StdRng;
use rand::SeedableRng;
use simqueue::injection::BernoulliInjection;
use simqueue::loss::GilbertElliottLoss;
use simqueue::{assess_stability, HistoryMode, RoutingProtocol, SimulationBuilder};

fn main() {
    // Deploy ~60 sensors in the unit square; radio range 0.22 keeps the
    // field connected with Δ around 8–12.
    let mut rng = StdRng::seed_from_u64(2026);
    let field = loop {
        let g = generators::random_geometric(60, 0.22, &mut rng);
        if ops::is_connected(&g) {
            break g;
        }
    };

    // The two nodes farthest apart become gateways; spread-out,
    // well-connected sensors report readings. Greedily add reporters while
    // the field stays feasible (Definition 3) — a deployment tool would do
    // the same admission check.
    let dist0 = ops::bfs_distances(&field, NodeId::new(0));
    let far = (0..60).max_by_key(|&v| dist0[v]).unwrap() as u32;
    let mut chosen: Vec<u32> = Vec::new();
    for v in (0..60).step_by(6) {
        let v = v as u32;
        if v == 0 || v == far || field.degree(NodeId::new(v)) < 3 || chosen.len() >= 10 {
            continue;
        }
        let mut b = TrafficSpecBuilder::new(field.clone()).sink(0, 8).sink(far, 8);
        for &c in chosen.iter().chain(std::iter::once(&v)) {
            b = b.source(c, 1);
        }
        let candidate = b.build().expect("sensor field spec");
        if classify(&candidate).feasibility.is_feasible() {
            chosen.push(v);
        }
    }
    let sources = chosen.len();
    let mut builder = TrafficSpecBuilder::new(field.clone()).sink(0, 8).sink(far, 8);
    for &c in &chosen {
        builder = builder.source(c, 1);
    }
    let spec = builder.build().expect("sensor field spec");

    let class = classify(&spec);
    println!(
        "field: n = {}, links = {}, Δ = {}, {} reporters -> 2 gateways",
        spec.node_count(),
        spec.graph.edge_count(),
        spec.max_degree(),
        sources
    );
    println!("feasibility: {:?} (f* = {})", class.feasibility, class.f_star);

    // Wireless conditions: bursty Gilbert–Elliott losses; duty-cycled
    // sensing. Under node-exclusive interference each radio can be active
    // on one link per step, roughly halving capacity — so the interference
    // run duty-cycles harder, exactly as a real deployment would.
    let steps = 30_000;
    for (label, duty, protocol) in [
        ("LGG (no interference), duty 0.5", 0.5, Box::new(Lgg::new()) as Box<dyn RoutingProtocol>),
        ("LGG + matching oracle, duty 0.2", 0.2, Box::new(MatchingLgg::new())),
    ] {
        let mut sim = SimulationBuilder::new(spec.clone(), protocol)
            .injection(Box::new(BernoulliInjection::new(duty)))
            .loss(Box::new(GilbertElliottLoss::new(0.02, 0.4, 0.05, 0.3)))
            .history(HistoryMode::Sampled(32))
            .seed(7)
            .build();
        sim.run(steps);
        let m = sim.metrics();
        let verdict = assess_stability(&m.history).verdict;
        println!("--- {label} ({steps} steps) ---");
        println!(
            "  verdict {verdict:?}; sup backlog {}; delivered {:.1}% of injected; \
             mean latency {:.1} steps",
            m.sup_total,
            100.0 * m.delivery_ratio(),
            m.mean_latency()
        );
    }
    println!(
        "note: losses shrink delivery but never destabilize — the paper's remark that \
         'packet losses here only improve the protocol stability' in action"
    );
}
